//! Execution metrics reported for compiled programs.

use serde::{Deserialize, Serialize};

use crate::LogFidelity;

/// The three headline metrics of the paper's evaluation (shuttle count,
/// execution time, fidelity) plus supporting operation counts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct ExecutionMetrics {
    /// Number of complete shuttle (split–move–merge) relocations.
    pub shuttle_count: usize,
    /// Number of intra-trap chain rearrangements.
    pub chain_rearrangements: usize,
    /// Number of single-qubit gates.
    pub single_qubit_gates: usize,
    /// Number of local two-qubit gates.
    pub two_qubit_gates: usize,
    /// Number of logical SWAP gates inserted by the compiler.
    pub swap_gates: usize,
    /// Number of fiber-mediated (remote) two-qubit gates.
    pub fiber_gates: usize,
    /// Number of measurements.
    pub measurements: usize,
    /// Estimated circuit execution time (makespan) in microseconds.
    pub execution_time_us: f64,
    /// End-to-end program fidelity, accumulated in log space.
    pub log_fidelity: LogFidelity,
}

impl ExecutionMetrics {
    /// Plain fidelity (may underflow to zero for large programs — use
    /// [`log10_fidelity`](ExecutionMetrics::log10_fidelity) for plotting).
    pub fn fidelity(&self) -> f64 {
        self.log_fidelity.fidelity()
    }

    /// Base-10 logarithm of the fidelity, the quantity the paper plots.
    pub fn log10_fidelity(&self) -> f64 {
        self.log_fidelity.log10()
    }

    /// Total number of two-qubit interactions of any kind.
    pub fn total_two_qubit_interactions(&self) -> usize {
        self.two_qubit_gates + self.swap_gates + self.fiber_gates
    }

    /// Total transport operations (shuttles plus chain rearrangements).
    pub fn total_transport_ops(&self) -> usize {
        self.shuttle_count + self.chain_rearrangements
    }
}

impl std::fmt::Display for ExecutionMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "shuttles={} time={:.0}us fidelity=1e{:.2} (2q={} fiber={} swap={})",
            self.shuttle_count,
            self.execution_time_us,
            self.log10_fidelity(),
            self.two_qubit_gates,
            self.fiber_gates,
            self.swap_gates,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_aggregate_counts() {
        let m = ExecutionMetrics {
            shuttle_count: 3,
            chain_rearrangements: 2,
            two_qubit_gates: 10,
            swap_gates: 1,
            fiber_gates: 4,
            ..Default::default()
        };
        assert_eq!(m.total_two_qubit_interactions(), 15);
        assert_eq!(m.total_transport_ops(), 5);
    }

    #[test]
    fn default_metrics_have_perfect_fidelity() {
        let m = ExecutionMetrics::default();
        assert_eq!(m.fidelity(), 1.0);
        assert_eq!(m.log10_fidelity(), 0.0);
    }

    #[test]
    fn display_includes_shuttles_and_time() {
        let m = ExecutionMetrics {
            shuttle_count: 7,
            execution_time_us: 1234.0,
            ..Default::default()
        };
        let text = m.to_string();
        assert!(text.contains("shuttles=7"));
        assert!(text.contains("1234"));
    }
}
