//! The staged compilation pipeline: typed stage artifacts, reusable
//! compile contexts, long-lived sessions and parallel batch compilation.
//!
//! The one-shot [`Compiler::compile`](crate::Compiler::compile) call is a
//! facade over a staged pipeline (placement → scheduling → swap insertion →
//! lowering) whose per-compile scratch — dependency-DAG ready sets and
//! look-ahead windows, placement state, weight tables, executor clock/heat
//! arrays — lives in a [`CompileContext`] arena that is allocated once and
//! reused across runs. Three entry points expose that reuse:
//!
//! * [`StagedCompiler::compile_in`] — compile into a caller-held context;
//! * [`CompileSession`] — a compiler paired with its context, held across
//!   requests;
//! * [`compile_batch`] — shard per-circuit contexts across
//!   [`std::thread::scope`] workers with deterministic result ordering.
//!
//! Context reuse is strictly an allocation-recycling optimisation: a reused
//! context yields op streams **bit-identical** to a fresh one (pinned by the
//! workspace fingerprint suites).
//!
//! ```
//! use eml_qccd::{CompileSession, Compiler, StagedCompiler};
//! # use eml_qccd::{CompileContext, CompileError, CompiledProgram};
//! # use ion_circuit::Circuit;
//! # #[derive(Debug)] struct Echo;
//! # impl Compiler for Echo {
//! #     fn name(&self) -> &str { "echo" }
//! #     fn compile(&self, c: &Circuit) -> Result<CompiledProgram, CompileError> {
//! #         let mut ctx = StagedCompiler::new_context(self);
//! #         self.compile_in(&mut ctx, c)
//! #     }
//! # }
//! # impl StagedCompiler for Echo {
//! #     fn new_context(&self) -> CompileContext { CompileContext::empty() }
//! #     fn compile_in(&self, _: &mut CompileContext, c: &Circuit) -> Result<CompiledProgram, CompileError> {
//! #         Ok(CompiledProgram::new("echo", c, Vec::new(), &eml_qccd::ScheduleExecutor::paper_defaults(), std::time::Duration::ZERO))
//! #     }
//! # }
//! let mut session = CompileSession::new(Echo);
//! let circuit = ion_circuit::generators::ghz(8);
//! let first = session.compile(&circuit).unwrap();   // cold context
//! let second = session.compile(&circuit).unwrap();  // reused context
//! assert_eq!(format!("{:?}", first.ops()), format!("{:?}", second.ops()));
//! ```

// lint: concurrency

use std::any::Any;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use ion_circuit::{Circuit, QubitId};

use crate::{CompileError, CompiledProgram, Compiler, EmlQccdDevice, QccdGridDevice, ScheduledOp};

// ---------------------------------------------------------------------------
// Stage artifacts
// ---------------------------------------------------------------------------

/// Artifact of the **placement** stage: the initial qubit → location
/// assignment a scheduling pass starts from. `L` is the device's location
/// type (`ZoneId` for EML-QCCD modules, `TrapId` for monolithic grids).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement<L> {
    /// The assignment, one entry per placed qubit, in qubit order.
    pub assignment: Vec<(QubitId, L)>,
}

impl<L> Placement<L> {
    /// Wraps an explicit assignment.
    pub fn new(assignment: Vec<(QubitId, L)>) -> Self {
        Placement { assignment }
    }
}

/// Artifact of the **scheduling + swap-insertion** stages: the transport and
/// two-qubit-gate portion of the program, plus where every ion ended up.
#[derive(Debug, Clone)]
pub struct Scheduled<L> {
    /// Scheduled transport and gate operations.
    pub ops: Vec<ScheduledOp>,
    /// Final qubit → location assignment when the pass finished.
    pub final_assignment: Vec<(QubitId, L)>,
    /// Number of cross-module SWAP gates inserted by the swap-insertion pass
    /// (always zero for compilers without one).
    pub inserted_swaps: usize,
    /// Wall-clock time spent inside the swap-insertion pass (a slice of the
    /// scheduling stage, reported separately in [`StageTimings`]).
    pub swap_insertion_time: Duration,
}

/// Artifact of the **lowering** stage: the complete op stream (single-qubit
/// gates and measurements accounted against the placements), ready for
/// evaluation into a [`CompiledProgram`].
#[derive(Debug, Clone)]
pub struct Lowered {
    /// The full scheduled operation sequence.
    pub ops: Vec<ScheduledOp>,
}

/// Wall-clock breakdown of one compilation run, stage by stage, so the
/// compile-time benchmark and the experiment harness can show where the time
/// goes per PR.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageTimings {
    /// Initial placement, including SABRE dry passes where applicable.
    pub placement_ms: f64,
    /// The main scheduling loop, excluding swap insertion.
    pub scheduling_ms: f64,
    /// The swap-insertion pass, measured inside the scheduling loop.
    pub swap_insertion_ms: f64,
    /// Op-stream assembly plus metrics evaluation by the executor.
    pub lowering_ms: f64,
    /// Look-ahead window refreshes (layered BFS runs or armed-tracker
    /// rebases) across every scheduling pass of the compile — the hot-path
    /// counter the bench tracks per PR so window-maintenance cost stays
    /// visible. Not a time: excluded from [`total_ms`](Self::total_ms).
    pub window_refreshes: u64,
    /// SABRE probe dry passes skipped by the convergence early-exit
    /// (0 or 1 per compile). Not a time: excluded from
    /// [`total_ms`](Self::total_ms).
    pub probe_skips: u64,
}

impl StageTimings {
    /// Total wall-clock across all (time) stages, in milliseconds; the
    /// diagnostic counters do not contribute.
    pub fn total_ms(&self) -> f64 {
        self.placement_ms + self.scheduling_ms + self.swap_insertion_ms + self.lowering_ms
    }
}

/// Sizing handle threaded through the pipeline: the resource dimensions of
/// the target device that the executor's flat clock/heat arrays are sized
/// from, so callers never hand-count zones.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceDims {
    /// Number of zone/trap resource slots on the device.
    pub num_zones: usize,
}

impl From<&EmlQccdDevice> for DeviceDims {
    fn from(device: &EmlQccdDevice) -> Self {
        DeviceDims {
            num_zones: device.zones().len(),
        }
    }
}

impl From<&QccdGridDevice> for DeviceDims {
    fn from(device: &QccdGridDevice) -> Self {
        DeviceDims {
            num_zones: device.num_traps(),
        }
    }
}

// ---------------------------------------------------------------------------
// Compile contexts
// ---------------------------------------------------------------------------

/// Compiler-specific scratch stored inside a [`CompileContext`].
///
/// Implementors own every reusable per-compile allocation; [`reset`]
/// (`ContextScratch::reset`) must drop all circuit-derived *state* while
/// keeping the allocations, so that a reset (or freshly reused) context
/// produces op streams bit-identical to a brand-new one.
pub trait ContextScratch: Any + Send {
    /// Clears all per-circuit state, keeping allocations for reuse.
    fn reset(&mut self);
}

/// The type-erased per-compile scratch arena a [`StagedCompiler`] works in.
///
/// A context is cheap to create but expensive to *warm* (its buffers grow to
/// the working-set size of the circuits compiled in it); reusing one across
/// compiles skips the re-allocation entirely. Contexts are compiler-specific
/// under the hood — handing a context to a different compiler type simply
/// re-initialises it.
#[derive(Debug, Default)]
pub struct CompileContext {
    scratch: Option<Box<dyn ContextScratch>>,
}

impl std::fmt::Debug for dyn ContextScratch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ContextScratch")
    }
}

impl CompileContext {
    /// A context with no scratch yet; the first compile initialises it.
    pub fn empty() -> Self {
        CompileContext::default()
    }

    /// A context pre-loaded with compiler-specific scratch.
    pub fn with<T: ContextScratch>(scratch: T) -> Self {
        CompileContext {
            scratch: Some(Box::new(scratch)),
        }
    }

    /// Clears all per-circuit state while keeping the allocations, so the
    /// next compile starts from a state indistinguishable from a fresh
    /// context (pinned by the session-reuse proptest suite).
    pub fn reset(&mut self) {
        if let Some(scratch) = &mut self.scratch {
            scratch.reset();
        }
    }

    /// `true` if the context currently holds scratch of type `T`.
    pub fn holds<T: ContextScratch>(&self) -> bool {
        self.scratch
            .as_deref()
            .is_some_and(|s| (s as &dyn Any).is::<T>())
    }

    /// The typed scratch, initialising (or replacing mismatched scratch)
    /// via `init`. This is how a [`StagedCompiler::compile_in`] implementation
    /// recovers its concrete arena from the erased context.
    pub fn scratch_or_init<T: ContextScratch>(&mut self, init: impl FnOnce() -> T) -> &mut T {
        if !self.holds::<T>() {
            self.scratch = Some(Box::new(init()));
        }
        let scratch = self
            .scratch
            .as_deref_mut()
            .expect("scratch was just initialised");
        (scratch as &mut dyn Any)
            .downcast_mut::<T>()
            .expect("scratch type was just checked")
    }
}

// ---------------------------------------------------------------------------
// The staged-compiler trait
// ---------------------------------------------------------------------------

/// A [`Compiler`] whose pipeline runs inside an explicit, reusable
/// [`CompileContext`].
///
/// The trait is object-safe: experiment harnesses hold
/// `Box<dyn StagedCompiler + Send + Sync>` and still get context reuse and
/// batch compilation. `compile_in` with a fresh context must behave exactly
/// like [`Compiler::compile`]; with a reused context it must produce
/// bit-identical op streams (only allocations are recycled).
pub trait StagedCompiler: Compiler {
    /// Creates a context sized for this compiler's device.
    fn new_context(&self) -> CompileContext;

    /// Compiles `circuit`, reusing the scratch held in `ctx`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Compiler::compile`].
    fn compile_in(
        &self,
        ctx: &mut CompileContext,
        circuit: &Circuit,
    ) -> Result<CompiledProgram, CompileError>;
}

impl<C: Compiler + ?Sized> Compiler for &C {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn compile(&self, circuit: &Circuit) -> Result<CompiledProgram, CompileError> {
        (**self).compile(circuit)
    }
}

impl<C: StagedCompiler + ?Sized> StagedCompiler for &C {
    fn new_context(&self) -> CompileContext {
        (**self).new_context()
    }
    fn compile_in(
        &self,
        ctx: &mut CompileContext,
        circuit: &Circuit,
    ) -> Result<CompiledProgram, CompileError> {
        (**self).compile_in(ctx, circuit)
    }
}

impl<C: Compiler + ?Sized> Compiler for Box<C> {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn compile(&self, circuit: &Circuit) -> Result<CompiledProgram, CompileError> {
        (**self).compile(circuit)
    }
}

impl<C: StagedCompiler + ?Sized> StagedCompiler for Box<C> {
    fn new_context(&self) -> CompileContext {
        (**self).new_context()
    }
    fn compile_in(
        &self,
        ctx: &mut CompileContext,
        circuit: &Circuit,
    ) -> Result<CompiledProgram, CompileError> {
        (**self).compile_in(ctx, circuit)
    }
}

// ---------------------------------------------------------------------------
// Post-compile schedule checks
// ---------------------------------------------------------------------------

/// A post-compile validation hook: inspects the compiled program against its
/// source circuit and vetoes it with [`CompileError::VerificationFailed`] if
/// the op stream is invalid.
///
/// The concrete check is supplied by callers (the `verify` crate builds one
/// from a device model) so the pipeline stays free of a dependency on the
/// analyzer. Checks run strictly **after** compilation, only on the
/// `*_checked` entry points — the unchecked compile paths pay zero cost.
pub type ScheduleCheck<'a> =
    &'a (dyn Fn(&Circuit, &CompiledProgram) -> Result<(), CompileError> + Sync);

/// One-shot [`Compiler::compile`] followed by a [`ScheduleCheck`] on the
/// result.
///
/// # Errors
///
/// Everything [`Compiler::compile`] returns, plus whatever the check vetoes
/// (by convention [`CompileError::VerificationFailed`]).
pub fn compile_checked<C>(
    compiler: &C,
    circuit: &Circuit,
    check: ScheduleCheck<'_>,
) -> Result<CompiledProgram, CompileError>
where
    C: Compiler + ?Sized,
{
    let program = compiler.compile(circuit)?;
    check(circuit, &program)?;
    Ok(program)
}

// ---------------------------------------------------------------------------
// Sessions
// ---------------------------------------------------------------------------

/// A compiler paired with its reusable [`CompileContext`], held across
/// requests: the serving-path entry point for repeated compiles against one
/// device. See the module-level example, and the `muss_ti` crate docs for an
/// end-to-end session over a real compiler.
#[derive(Debug)]
pub struct CompileSession<C: StagedCompiler> {
    compiler: C,
    context: CompileContext,
}

impl<C: StagedCompiler> CompileSession<C> {
    /// Opens a session, allocating the context once.
    pub fn new(compiler: C) -> Self {
        let context = compiler.new_context();
        CompileSession { compiler, context }
    }

    /// The compiler this session drives.
    pub fn compiler(&self) -> &C {
        &self.compiler
    }

    /// Compiles `circuit` in the session's context.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Compiler::compile`].
    pub fn compile(&mut self, circuit: &Circuit) -> Result<CompiledProgram, CompileError> {
        self.compiler.compile_in(&mut self.context, circuit)
    }

    /// [`CompileSession::compile`] followed by a [`ScheduleCheck`] on the
    /// result — context reuse with the same verification guarantee as
    /// [`compile_checked`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`compile_checked`].
    pub fn compile_checked(
        &mut self,
        circuit: &Circuit,
        check: ScheduleCheck<'_>,
    ) -> Result<CompiledProgram, CompileError> {
        let program = self.compiler.compile_in(&mut self.context, circuit)?;
        check(circuit, &program)?;
        Ok(program)
    }

    /// Drops all per-circuit state held in the context (keeping its
    /// allocations), e.g. between tenants of a shared serving process.
    pub fn reset(&mut self) {
        self.context.reset();
    }

    /// Compiles many circuits in parallel (the session's own context is not
    /// used; each worker gets its own). See [`compile_batch`].
    pub fn compile_batch(&self, circuits: &[Circuit]) -> Vec<Result<CompiledProgram, CompileError>>
    where
        C: Sync,
    {
        compile_batch(&self.compiler, circuits)
    }

    /// [`CompileSession::compile_batch`] with a [`ScheduleCheck`] applied to
    /// every successfully compiled slot; see
    /// [`compile_batch_with_threads_checked`] for the fault-isolation
    /// guarantees.
    pub fn compile_batch_checked(
        &self,
        circuits: &[Circuit],
        check: ScheduleCheck<'_>,
    ) -> Vec<Result<CompiledProgram, CompileError>>
    where
        C: Sync,
    {
        let default_threads = std::thread::available_parallelism()
            .map(usize::from)
            .unwrap_or(1);
        compile_batch_with_threads_checked(&self.compiler, circuits, default_threads, check)
    }

    /// Closes the session, returning the compiler.
    pub fn into_compiler(self) -> C {
        self.compiler
    }
}

// ---------------------------------------------------------------------------
// Parallel batch compilation
// ---------------------------------------------------------------------------

/// Compiles every circuit with `compiler`, sharding per-circuit contexts
/// across [`std::thread::scope`] workers.
///
/// Results come back **in input order** regardless of thread interleaving,
/// and each compile is bit-identical to its one-shot equivalent, so batch
/// output is deterministic. Worker count defaults to the machine's available
/// parallelism, capped at the batch size; each worker owns one context and
/// reuses it across every circuit it pulls.
pub fn compile_batch<C>(
    compiler: &C,
    circuits: &[Circuit],
) -> Vec<Result<CompiledProgram, CompileError>>
where
    C: StagedCompiler + Sync + ?Sized,
{
    let default_threads = std::thread::available_parallelism()
        .map(usize::from)
        .unwrap_or(1);
    compile_batch_with_threads(compiler, circuits, default_threads)
}

/// [`compile_batch`] with an explicit worker count (at least one; capped at
/// the batch size). Thread count affects wall-clock only, never results.
pub fn compile_batch_with_threads<C>(
    compiler: &C,
    circuits: &[Circuit],
    threads: usize,
) -> Vec<Result<CompiledProgram, CompileError>>
where
    C: StagedCompiler + Sync + ?Sized,
{
    batch_with_threads_inner(compiler, circuits, threads, None)
}

/// [`compile_batch_with_threads`] with a [`ScheduleCheck`] applied to every
/// successfully compiled slot.
///
/// The check runs inside the same fault-isolation boundary as the compile
/// itself: a check that *panics* fails only its own slot (as
/// [`CompileError::Internal`]), and a check that vetoes yields
/// [`CompileError::VerificationFailed`] in that slot, sparing the rest of the
/// batch either way.
pub fn compile_batch_with_threads_checked<C>(
    compiler: &C,
    circuits: &[Circuit],
    threads: usize,
    check: ScheduleCheck<'_>,
) -> Vec<Result<CompiledProgram, CompileError>>
where
    C: StagedCompiler + Sync + ?Sized,
{
    batch_with_threads_inner(compiler, circuits, threads, Some(check))
}

fn batch_with_threads_inner<C>(
    compiler: &C,
    circuits: &[Circuit],
    threads: usize,
    check: Option<ScheduleCheck<'_>>,
) -> Vec<Result<CompiledProgram, CompileError>>
where
    C: StagedCompiler + Sync + ?Sized,
{
    let workers = threads.max(1).min(circuits.len());
    if workers <= 1 {
        // Sequential fallback still reuses one context across the batch.
        let mut ctx = compiler.new_context();
        return circuits
            .iter()
            .map(|circuit| compile_one_isolated(compiler, &mut ctx, circuit, check))
            .collect();
    }

    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<Result<CompiledProgram, CompileError>>> = Vec::new();
    slots.resize_with(circuits.len(), || None);

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                scope.spawn(move || {
                    let mut ctx = compiler.new_context();
                    let mut produced = Vec::new();
                    loop {
                        // sync: Relaxed work-stealing ticket — the counter
                        // only partitions indices (each value claimed once);
                        // results are ordered by index and published through
                        // the scope join, not through this atomic.
                        let index = next.fetch_add(1, Ordering::Relaxed);
                        let Some(circuit) = circuits.get(index) else {
                            break;
                        };
                        produced.push((
                            index,
                            compile_one_isolated(compiler, &mut ctx, circuit, check),
                        ));
                    }
                    produced
                })
            })
            .collect();
        for handle in handles {
            for (index, result) in handle.join().expect("batch worker panicked") {
                slots[index] = Some(result);
            }
        }
    });

    slots
        .into_iter()
        .map(|slot| slot.expect("every batch index is claimed by exactly one worker"))
        .collect()
}

/// One fault-isolated batch item: a panicking compile surfaces as
/// [`CompileError::Internal`] in its own slot instead of unwinding through
/// the worker and poisoning the whole batch.
///
/// On the happy path this is exactly `compiler.compile_in(ctx, circuit)` —
/// `catch_unwind` allocates nothing unless a panic actually unwinds, so the
/// zero-steady-state-allocation contract of the scheduler loop is untouched.
/// After a caught panic the context may have been abandoned mid-mutation, so
/// it is rebuilt from scratch before the next item.
fn compile_one_isolated<C>(
    compiler: &C,
    ctx: &mut CompileContext,
    circuit: &Circuit,
    check: Option<ScheduleCheck<'_>>,
) -> Result<CompiledProgram, CompileError>
where
    C: StagedCompiler + Sync + ?Sized,
{
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let program = compiler.compile_in(ctx, circuit)?;
        if let Some(check) = check {
            check(circuit, &program)?;
        }
        Ok(program)
    })) {
        Ok(result) => result,
        Err(payload) => {
            *ctx = compiler.new_context();
            Err(CompileError::Internal(panic_message(&*payload)))
        }
    }
}

/// Renders a panic payload as text (panics carry `&str` or `String` in
/// practice; anything else gets a placeholder).
fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ScheduleExecutor;

    /// A minimal staged compiler: emits one measurement per qubit and counts
    /// how much scratch it reused.
    #[derive(Debug)]
    struct CountingCompiler;

    #[derive(Debug, Default)]
    struct CountingScratch {
        compiles: usize,
        buffer: Vec<ScheduledOp>,
    }

    impl ContextScratch for CountingScratch {
        fn reset(&mut self) {
            self.buffer.clear();
        }
    }

    impl Compiler for CountingCompiler {
        fn name(&self) -> &str {
            "counting"
        }
        fn compile(&self, circuit: &Circuit) -> Result<CompiledProgram, CompileError> {
            let mut ctx = StagedCompiler::new_context(self);
            self.compile_in(&mut ctx, circuit)
        }
    }

    impl StagedCompiler for CountingCompiler {
        fn new_context(&self) -> CompileContext {
            CompileContext::with(CountingScratch::default())
        }
        fn compile_in(
            &self,
            ctx: &mut CompileContext,
            circuit: &Circuit,
        ) -> Result<CompiledProgram, CompileError> {
            let scratch = ctx.scratch_or_init(CountingScratch::default);
            scratch.compiles += 1;
            scratch.buffer.clear();
            for q in 0..circuit.num_qubits() {
                scratch.buffer.push(ScheduledOp::Measurement {
                    qubit: QubitId::new(q),
                    zone: 0,
                });
            }
            Ok(CompiledProgram::new(
                self.name(),
                circuit,
                scratch.buffer.clone(),
                &ScheduleExecutor::paper_defaults(),
                Duration::ZERO,
            ))
        }
    }

    fn circuit(n: usize) -> Circuit {
        let mut c = Circuit::with_name(format!("c{n}"), n);
        for q in 0..n {
            c.measure(q);
        }
        c
    }

    #[test]
    fn session_reuses_one_context_across_compiles() {
        let mut session = CompileSession::new(CountingCompiler);
        session.compile(&circuit(3)).unwrap();
        session.compile(&circuit(5)).unwrap();
        let ctx = &mut session.context;
        let scratch = ctx.scratch_or_init(CountingScratch::default);
        assert_eq!(scratch.compiles, 2, "both compiles hit the same scratch");
    }

    #[test]
    fn context_reinitialises_on_type_mismatch() {
        #[derive(Debug, Default)]
        struct Other;
        impl ContextScratch for Other {
            fn reset(&mut self) {}
        }
        let mut ctx = CompileContext::with(Other);
        assert!(ctx.holds::<Other>());
        assert!(!ctx.holds::<CountingScratch>());
        let scratch = ctx.scratch_or_init(CountingScratch::default);
        scratch.compiles = 7;
        assert!(ctx.holds::<CountingScratch>());
        assert_eq!(
            ctx.scratch_or_init(CountingScratch::default).compiles,
            7,
            "matching scratch survives"
        );
    }

    #[test]
    fn reset_clears_state_but_keeps_scratch_type() {
        let mut ctx = CompileContext::with(CountingScratch {
            compiles: 3,
            buffer: vec![ScheduledOp::ChainRearrange { zone: 0 }],
        });
        ctx.reset();
        let scratch = ctx.scratch_or_init(CountingScratch::default);
        assert!(scratch.buffer.is_empty(), "reset clears per-circuit state");
        assert_eq!(scratch.compiles, 3, "non-circuit fields survive");
    }

    #[test]
    fn batch_results_are_in_input_order_for_any_thread_count() {
        let circuits: Vec<Circuit> = (1..=13).map(circuit).collect();
        let reference: Vec<usize> = circuits.iter().map(Circuit::num_qubits).collect();
        for threads in [1, 2, 4, 32] {
            let results = compile_batch_with_threads(&CountingCompiler, &circuits, threads);
            let got: Vec<usize> = results
                .into_iter()
                .map(|r| r.unwrap().num_qubits())
                .collect();
            assert_eq!(got, reference, "threads={threads}");
        }
    }

    #[test]
    fn empty_batch_is_empty() {
        assert!(compile_batch(&CountingCompiler, &[]).is_empty());
    }

    /// A compiler that panics on circuits named "poison" and otherwise
    /// behaves like [`CountingCompiler`].
    #[derive(Debug)]
    struct PoisonCompiler;

    impl Compiler for PoisonCompiler {
        fn name(&self) -> &str {
            "poison"
        }
        fn compile(&self, circuit: &Circuit) -> Result<CompiledProgram, CompileError> {
            let mut ctx = StagedCompiler::new_context(self);
            self.compile_in(&mut ctx, circuit)
        }
    }

    impl StagedCompiler for PoisonCompiler {
        fn new_context(&self) -> CompileContext {
            CompileContext::with(CountingScratch::default())
        }
        fn compile_in(
            &self,
            ctx: &mut CompileContext,
            circuit: &Circuit,
        ) -> Result<CompiledProgram, CompileError> {
            // Mutate the scratch *before* panicking so the test exercises a
            // context abandoned mid-compile.
            let scratch = ctx.scratch_or_init(CountingScratch::default);
            scratch.buffer.push(ScheduledOp::ChainRearrange { zone: 0 });
            assert!(circuit.name() != "poison", "poisoned circuit");
            CountingCompiler.compile_in(ctx, circuit)
        }
    }

    #[test]
    fn poisoned_circuit_fails_its_slot_and_spares_the_rest() {
        let mut circuits: Vec<Circuit> = (1..=9).map(circuit).collect();
        circuits[4] = Circuit::with_name("poison", 4);
        for threads in [1, 4] {
            let results = compile_batch_with_threads(&PoisonCompiler, &circuits, threads);
            assert_eq!(results.len(), circuits.len());
            for (i, result) in results.iter().enumerate() {
                if i == 4 {
                    match result {
                        Err(CompileError::Internal(msg)) => {
                            assert!(msg.contains("poisoned circuit"), "{msg}")
                        }
                        other => panic!("expected Internal error in slot 4, got {other:?}"),
                    }
                } else {
                    let program = result.as_ref().expect("healthy slot compiles");
                    assert_eq!(program.num_qubits(), circuits[i].num_qubits());
                }
            }
        }
    }

    #[test]
    fn context_is_rebuilt_after_a_caught_panic() {
        // Sequential path: the circuit after the poison one reuses the same
        // worker context, which must have been rebuilt, not left
        // mid-mutation.
        let circuits = vec![
            Circuit::with_name("poison", 2),
            circuit(3),
            Circuit::with_name("poison", 2),
            circuit(5),
        ];
        let results = compile_batch_with_threads(&PoisonCompiler, &circuits, 1);
        assert!(matches!(results[0], Err(CompileError::Internal(_))));
        assert_eq!(results[1].as_ref().unwrap().num_qubits(), 3);
        assert!(matches!(results[2], Err(CompileError::Internal(_))));
        assert_eq!(results[3].as_ref().unwrap().num_qubits(), 5);
    }

    #[test]
    fn checked_paths_veto_via_the_schedule_check() {
        // Rejects every program whose circuit is named "bad".
        let check: &(dyn Fn(&Circuit, &CompiledProgram) -> Result<(), CompileError> + Sync) =
            &|circuit, _program| {
                if circuit.name() == "bad" {
                    Err(CompileError::VerificationFailed("seeded veto".into()))
                } else {
                    Ok(())
                }
            };

        let good = circuit(3);
        let bad = Circuit::with_name("bad", 2);

        // One-shot.
        assert!(compile_checked(&CountingCompiler, &good, check).is_ok());
        assert!(matches!(
            compile_checked(&CountingCompiler, &bad, check),
            Err(CompileError::VerificationFailed(_))
        ));

        // Session.
        let mut session = CompileSession::new(CountingCompiler);
        assert!(session.compile_checked(&good, check).is_ok());
        assert!(matches!(
            session.compile_checked(&bad, check),
            Err(CompileError::VerificationFailed(_))
        ));

        // Batch: the vetoed slot fails alone, in input order.
        let circuits = vec![good.clone(), bad, circuit(5)];
        for threads in [1, 4] {
            let results =
                compile_batch_with_threads_checked(&CountingCompiler, &circuits, threads, check);
            assert!(results[0].is_ok());
            assert!(matches!(
                results[1],
                Err(CompileError::VerificationFailed(_))
            ));
            assert!(results[2].is_ok());
        }
    }

    #[test]
    fn panicking_check_fails_only_its_slot() {
        let check: &(dyn Fn(&Circuit, &CompiledProgram) -> Result<(), CompileError> + Sync) =
            &|circuit, _program| {
                assert!(circuit.name() != "explosive", "check blew up");
                Ok(())
            };
        let circuits = vec![circuit(3), Circuit::with_name("explosive", 2), circuit(4)];
        let results = compile_batch_with_threads_checked(&CountingCompiler, &circuits, 1, check);
        assert!(results[0].is_ok());
        match &results[1] {
            Err(CompileError::Internal(msg)) => assert!(msg.contains("check blew up"), "{msg}"),
            other => panic!("expected Internal from panicking check, got {other:?}"),
        }
        assert!(results[2].is_ok());
    }

    #[test]
    fn dims_from_devices() {
        let eml = crate::DeviceConfig::for_qubits(64).build();
        assert_eq!(DeviceDims::from(&eml).num_zones, eml.zones().len());
        let grid = crate::GridConfig::new(2, 3, 4).build();
        assert_eq!(DeviceDims::from(&grid).num_zones, 6);
    }

    #[test]
    fn stage_timings_total_sums_times_not_counters() {
        let t = StageTimings {
            placement_ms: 1.0,
            scheduling_ms: 2.0,
            swap_insertion_ms: 0.5,
            lowering_ms: 0.25,
            window_refreshes: 97,
            probe_skips: 1,
        };
        assert!((t.total_ms() - 3.75).abs() < 1e-12);
    }
}
