//! Error types for the hardware model and compilers.

use std::error::Error;
use std::fmt;

use ion_circuit::QubitId;

/// Errors produced while constructing devices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeviceError {
    /// The configuration is internally inconsistent.
    InvalidConfig(String),
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::InvalidConfig(msg) => write!(f, "invalid device configuration: {msg}"),
        }
    }
}

impl Error for DeviceError {}

/// Errors produced by compilers targeting these devices.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// The circuit needs more qubits than the device can hold.
    DeviceTooSmall {
        /// Qubits required by the circuit.
        required: usize,
        /// Total capacity of the device.
        capacity: usize,
    },
    /// The circuit failed validation before compilation.
    InvalidCircuit(String),
    /// The device configuration is unusable for this compiler.
    InvalidDevice(String),
    /// The scheduler could not find a placement for a qubit (indicates an
    /// internal inconsistency; surfaced rather than panicking so callers can
    /// report which qubit and gate were involved).
    PlacementFailed {
        /// The qubit that could not be placed.
        qubit: QubitId,
        /// Human-readable context.
        context: String,
    },
    /// The compiler violated one of its own invariants (a caught panic or
    /// equivalent). Inputs never produce this legitimately; seeing it means
    /// a compiler bug, surfaced as an error so one bad compile cannot take
    /// down a batch or a serving process.
    Internal(String),
    /// A post-compile schedule check (the `crates/verify` translation
    /// validator) rejected the emitted op stream. Like
    /// [`CompileError::Internal`], this indicates a compiler bug — a
    /// physically invalid or source-divergent schedule — caught before the
    /// program reaches a caller.
    VerificationFailed(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::DeviceTooSmall { required, capacity } => write!(
                f,
                "circuit needs {required} qubits but the device only holds {capacity}"
            ),
            CompileError::InvalidCircuit(msg) => write!(f, "invalid circuit: {msg}"),
            CompileError::InvalidDevice(msg) => write!(f, "invalid device: {msg}"),
            CompileError::PlacementFailed { qubit, context } => {
                write!(f, "could not place {qubit}: {context}")
            }
            CompileError::Internal(msg) => {
                write!(f, "internal compiler error: {msg}")
            }
            CompileError::VerificationFailed(msg) => {
                write!(f, "schedule verification failed: {msg}")
            }
        }
    }
}

impl Error for CompileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_useful_messages() {
        let e = CompileError::DeviceTooSmall {
            required: 40,
            capacity: 32,
        };
        assert!(e.to_string().contains("40"));
        assert!(e.to_string().contains("32"));
        let d = DeviceError::InvalidConfig("no modules".into());
        assert!(d.to_string().contains("no modules"));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DeviceError>();
        assert_send_sync::<CompileError>();
    }
}
