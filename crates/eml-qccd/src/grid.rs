//! Monolithic QCCD grid device — the architecture the baseline compilers target.

use serde::{Deserialize, Serialize};

use crate::DeviceError;

/// Identifier of a trap in a [`QccdGridDevice`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TrapId(pub usize);

impl TrapId {
    /// The raw index of the trap (row-major).
    pub const fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for TrapId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Configuration of a monolithic QCCD grid: `rows × cols` traps connected to
/// their orthogonal neighbours through junctions, every trap holding up to
/// `trap_capacity` ions and able to execute gates locally (this is the
/// "traditional QCCD" model of Murali et al. that the paper compares against).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridConfig {
    rows: usize,
    cols: usize,
    trap_capacity: usize,
    /// Centre-to-centre distance between adjacent traps, in micrometres.
    inter_trap_distance_um: f64,
}

impl Default for GridConfig {
    fn default() -> Self {
        GridConfig {
            rows: 2,
            cols: 2,
            trap_capacity: 16,
            inter_trap_distance_um: 200.0,
        }
    }
}

impl GridConfig {
    /// Creates a `rows × cols` grid with the given per-trap capacity.
    pub fn new(rows: usize, cols: usize, trap_capacity: usize) -> Self {
        GridConfig {
            rows,
            cols,
            trap_capacity,
            ..Default::default()
        }
    }

    /// Grid sized per the paper's Section 4: 2×2 (capacity 12) for small
    /// applications, 3×4 for medium, 4×5 for large — all with capacity 16
    /// unless the small-scale Table 2 capacities are requested explicitly.
    pub fn for_qubits(num_qubits: usize) -> Self {
        if num_qubits <= 48 {
            GridConfig::new(2, 2, 16)
        } else if num_qubits <= 160 {
            GridConfig::new(3, 4, 16)
        } else {
            GridConfig::new(4, 5, 16)
        }
    }

    /// Sets the inter-trap distance in micrometres.
    pub fn with_inter_trap_distance_um(mut self, distance: f64) -> Self {
        self.inter_trap_distance_um = distance;
        self
    }

    /// Sets the per-trap capacity.
    pub fn with_trap_capacity(mut self, capacity: usize) -> Self {
        self.trap_capacity = capacity;
        self
    }

    /// Grid rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Grid columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Per-trap ion capacity.
    pub fn trap_capacity(&self) -> usize {
        self.trap_capacity
    }

    /// Centre-to-centre distance between adjacent traps.
    pub fn inter_trap_distance_um(&self) -> f64 {
        self.inter_trap_distance_um
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidConfig`] for empty grids or capacities
    /// below 2.
    pub fn validate(&self) -> Result<(), DeviceError> {
        if self.rows == 0 || self.cols == 0 {
            return Err(DeviceError::InvalidConfig(
                "grid must have at least one trap".into(),
            ));
        }
        if self.trap_capacity < 2 {
            return Err(DeviceError::InvalidConfig(
                "trap capacity must be at least 2".into(),
            ));
        }
        if !self.inter_trap_distance_um.is_finite() || self.inter_trap_distance_um <= 0.0 {
            return Err(DeviceError::InvalidConfig(
                "inter-trap distance must be positive".into(),
            ));
        }
        Ok(())
    }

    /// Builds the grid device.
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration; use [`GridConfig::try_build`] to
    /// handle the error.
    pub fn build(&self) -> QccdGridDevice {
        self.try_build().expect("invalid QCCD grid configuration")
    }

    /// Builds the grid device, returning an error for invalid configurations.
    ///
    /// # Errors
    ///
    /// Propagates [`GridConfig::validate`] failures.
    pub fn try_build(&self) -> Result<QccdGridDevice, DeviceError> {
        self.validate()?;
        let traps = (0..self.rows * self.cols).map(TrapId).collect();
        Ok(QccdGridDevice {
            config: self.clone(),
            traps,
        })
    }
}

/// A monolithic QCCD grid device (static topology).
///
/// ```
/// use eml_qccd::{GridConfig, TrapId};
///
/// let grid = GridConfig::new(3, 4, 16).build();
/// assert_eq!(grid.num_traps(), 12);
/// assert_eq!(grid.hop_distance(TrapId(0), TrapId(11)), 5);
/// assert_eq!(grid.neighbors(TrapId(0)).len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QccdGridDevice {
    config: GridConfig,
    /// All trap ids, row-major — precomputed so [`QccdGridDevice::traps`]
    /// serves a borrowed slice instead of allocating per call.
    traps: Vec<TrapId>,
}

impl QccdGridDevice {
    /// The configuration this grid was built from.
    pub fn config(&self) -> &GridConfig {
        &self.config
    }

    /// Total number of traps.
    pub fn num_traps(&self) -> usize {
        self.config.rows * self.config.cols
    }

    /// Total ion capacity.
    pub fn total_capacity(&self) -> usize {
        self.num_traps() * self.config.trap_capacity
    }

    /// Per-trap capacity.
    pub fn trap_capacity(&self) -> usize {
        self.config.trap_capacity
    }

    /// All trap ids, row-major (precomputed slice).
    pub fn traps(&self) -> &[TrapId] {
        &self.traps
    }

    /// The `(row, col)` coordinates of a trap.
    pub fn coordinates(&self, trap: TrapId) -> (usize, usize) {
        (
            trap.index() / self.config.cols,
            trap.index() % self.config.cols,
        )
    }

    /// The trap at `(row, col)`, if it exists.
    pub fn trap_at(&self, row: usize, col: usize) -> Option<TrapId> {
        (row < self.config.rows && col < self.config.cols)
            .then(|| TrapId(row * self.config.cols + col))
    }

    /// Orthogonal neighbours of a trap.
    pub fn neighbors(&self, trap: TrapId) -> Vec<TrapId> {
        let (r, c) = self.coordinates(trap);
        let mut out = Vec::with_capacity(4);
        if r > 0 {
            out.push(self.trap_at(r - 1, c).unwrap());
        }
        if c > 0 {
            out.push(self.trap_at(r, c - 1).unwrap());
        }
        if let Some(t) = self.trap_at(r + 1, c) {
            out.push(t);
        }
        if let Some(t) = self.trap_at(r, c + 1) {
            out.push(t);
        }
        out
    }

    /// Manhattan hop distance between two traps (the number of shuttle hops a
    /// transported ion needs).
    pub fn hop_distance(&self, a: TrapId, b: TrapId) -> usize {
        let (ar, ac) = self.coordinates(a);
        let (br, bc) = self.coordinates(b);
        ar.abs_diff(br) + ac.abs_diff(bc)
    }

    /// One shortest path from `a` to `b` (inclusive of both endpoints),
    /// walking rows first then columns.
    pub fn shortest_path(&self, a: TrapId, b: TrapId) -> Vec<TrapId> {
        let (ar, ac) = self.coordinates(a);
        let (br, bc) = self.coordinates(b);
        let mut path = vec![a];
        let (mut r, mut c) = (ar, ac);
        while r != br {
            r = if br > r { r + 1 } else { r - 1 };
            path.push(self.trap_at(r, c).unwrap());
        }
        while c != bc {
            c = if bc > c { c + 1 } else { c - 1 };
            path.push(self.trap_at(r, c).unwrap());
        }
        path
    }

    /// Physical distance of one hop, in micrometres.
    pub fn hop_distance_um(&self) -> f64 {
        self.config.inter_trap_distance_um
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_dimensions_and_capacity() {
        let g = GridConfig::new(4, 5, 16).build();
        assert_eq!(g.num_traps(), 20);
        assert_eq!(g.total_capacity(), 320);
    }

    #[test]
    fn for_qubits_matches_paper_grids() {
        assert_eq!(GridConfig::for_qubits(32).build().num_traps(), 4);
        assert_eq!(GridConfig::for_qubits(128).build().num_traps(), 12);
        assert_eq!(GridConfig::for_qubits(299).build().num_traps(), 20);
    }

    #[test]
    fn coordinates_round_trip() {
        let g = GridConfig::new(3, 4, 8).build();
        for &t in g.traps() {
            let (r, c) = g.coordinates(t);
            assert_eq!(g.trap_at(r, c), Some(t));
        }
        assert_eq!(g.trap_at(3, 0), None);
    }

    #[test]
    fn corner_traps_have_two_neighbors() {
        let g = GridConfig::new(3, 3, 8).build();
        assert_eq!(g.neighbors(TrapId(0)).len(), 2);
        assert_eq!(g.neighbors(TrapId(4)).len(), 4);
    }

    #[test]
    fn shortest_path_has_hop_distance_plus_one_traps() {
        let g = GridConfig::new(4, 5, 8).build();
        let a = TrapId(0);
        let b = TrapId(19);
        let path = g.shortest_path(a, b);
        assert_eq!(path.len(), g.hop_distance(a, b) + 1);
        assert_eq!(*path.first().unwrap(), a);
        assert_eq!(*path.last().unwrap(), b);
        // Consecutive traps are neighbours.
        for w in path.windows(2) {
            assert_eq!(g.hop_distance(w[0], w[1]), 1);
        }
    }

    #[test]
    fn invalid_grids_are_rejected() {
        assert!(GridConfig::new(0, 3, 8).validate().is_err());
        assert!(GridConfig::new(2, 2, 1).validate().is_err());
        assert!(GridConfig::new(2, 2, 8)
            .with_inter_trap_distance_um(0.0)
            .validate()
            .is_err());
    }
}
