//! The `Compiler` trait and the `CompiledProgram` it produces.

use std::time::Duration;

use ion_circuit::{Circuit, QubitId};

use crate::ops::ResourceId;
use crate::pipeline::{DeviceDims, StageTimings};
use crate::{CompileError, ExecutionMetrics, ExecutorScratch, ScheduleExecutor, ScheduledOp};

/// The artefact produced by compiling a circuit for a trapped-ion device:
/// the scheduled operation sequence plus the metrics obtained by running it
/// through the shared [`ScheduleExecutor`].
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    compiler_name: String,
    circuit_name: String,
    num_qubits: usize,
    ops: Vec<ScheduledOp>,
    metrics: ExecutionMetrics,
    compile_time: Duration,
    stage_timings: Option<StageTimings>,
    initial_placement: Option<Vec<(QubitId, ResourceId)>>,
}

impl CompiledProgram {
    /// Assembles a compiled program, evaluating `ops` with `executor` to fill
    /// in the metrics. The executor's resource arrays are sized by a pre-scan
    /// over the op stream; pipeline code paths that know their device use
    /// [`CompiledProgram::evaluated`] instead.
    pub fn new(
        compiler_name: impl Into<String>,
        circuit: &Circuit,
        ops: Vec<ScheduledOp>,
        executor: &ScheduleExecutor,
        compile_time: Duration,
    ) -> Self {
        let metrics = executor.execute(&ops);
        Self::from_parts(compiler_name, circuit, ops, metrics, compile_time)
    }

    /// [`CompiledProgram::new`] with the executor's resource arrays sized
    /// from the device-topology handle threaded through the pipeline
    /// ([`DeviceDims`], obtained via `From<&EmlQccdDevice>` /
    /// `From<&QccdGridDevice>`) and evaluated in caller-pooled scratch —
    /// no sizing pre-scan and no per-evaluation allocation.
    pub fn evaluated(
        compiler_name: impl Into<String>,
        circuit: &Circuit,
        ops: Vec<ScheduledOp>,
        executor: &ScheduleExecutor,
        scratch: &mut ExecutorScratch,
        dims: DeviceDims,
        compile_time: Duration,
    ) -> Self {
        let metrics = executor.execute_in(scratch, &ops, circuit.num_qubits(), dims.num_zones);
        Self::from_parts(compiler_name, circuit, ops, metrics, compile_time)
    }

    /// Assembles a program from already-evaluated metrics (the final pipeline
    /// stage, where the evaluation ran in a pooled [`ExecutorScratch`]).
    pub fn from_parts(
        compiler_name: impl Into<String>,
        circuit: &Circuit,
        ops: Vec<ScheduledOp>,
        metrics: ExecutionMetrics,
        compile_time: Duration,
    ) -> Self {
        CompiledProgram {
            compiler_name: compiler_name.into(),
            circuit_name: circuit.name().to_string(),
            num_qubits: circuit.num_qubits(),
            ops,
            metrics,
            compile_time,
            stage_timings: None,
            initial_placement: None,
        }
    }

    /// Attaches the per-stage wall-clock breakdown recorded by the pipeline.
    pub fn with_stage_timings(mut self, timings: StageTimings) -> Self {
        self.stage_timings = Some(timings);
        self
    }

    /// Attaches the initial qubit → zone/trap assignment the scheduler
    /// started from. The translation-validation analyzer (`crates/verify`)
    /// uses it to replay the op stream in strict mode (exact occupancy and
    /// `ions_in_zone` checks); without it the analyzer falls back to
    /// inferring start locations from each qubit's first mention.
    pub fn with_initial_placement(mut self, placement: Vec<(QubitId, ResourceId)>) -> Self {
        self.initial_placement = Some(placement);
        self
    }

    /// The initial qubit → zone/trap assignment, when the compiler recorded
    /// one. See [`CompiledProgram::with_initial_placement`].
    pub fn initial_placement(&self) -> Option<&[(QubitId, ResourceId)]> {
        self.initial_placement.as_deref()
    }

    /// Per-stage wall-clock breakdown (placement / scheduling / swap
    /// insertion / lowering), when the compiler recorded one.
    pub fn stage_timings(&self) -> Option<&StageTimings> {
        self.stage_timings.as_ref()
    }

    /// Name of the compiler that produced this program.
    pub fn compiler_name(&self) -> &str {
        &self.compiler_name
    }

    /// Name of the compiled circuit.
    pub fn circuit_name(&self) -> &str {
        &self.circuit_name
    }

    /// Number of logical qubits in the source circuit.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The scheduled operation sequence.
    pub fn ops(&self) -> &[ScheduledOp] {
        &self.ops
    }

    /// The execution metrics (shuttles, time, fidelity).
    pub fn metrics(&self) -> &ExecutionMetrics {
        &self.metrics
    }

    /// Wall-clock time the compiler spent producing this program.
    pub fn compile_time(&self) -> Duration {
        self.compile_time
    }

    /// Re-evaluates the same operation sequence under a different executor
    /// (e.g. a perfect-gate or perfect-shuttle fidelity model) without
    /// recompiling. Used by the optimality analysis (Fig. 13).
    pub fn reevaluate(&self, executor: &ScheduleExecutor) -> ExecutionMetrics {
        executor.execute(&self.ops)
    }
}

/// A compiler lowering logical circuits onto a trapped-ion device.
///
/// Implementors hold their target device description and models; the trait
/// keeps MUSS-TI and the baseline compilers interchangeable in the
/// experiment harness.
pub trait Compiler {
    /// Human-readable name used in tables and figures (e.g. `"MUSS-TI"`).
    fn name(&self) -> &str;

    /// Compiles `circuit` into a scheduled program.
    ///
    /// # Errors
    ///
    /// Returns a [`CompileError`] if the circuit does not fit the device or
    /// fails validation.
    fn compile(&self, circuit: &Circuit) -> Result<CompiledProgram, CompileError>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use ion_circuit::QubitId;

    #[test]
    fn compiled_program_evaluates_metrics() {
        let mut circuit = Circuit::with_name("demo", 2);
        circuit.cx(0, 1);
        let ops = vec![ScheduledOp::TwoQubitGate {
            a: QubitId::new(0),
            b: QubitId::new(1),
            zone: 0,
            ions_in_zone: 2,
        }];
        let program = CompiledProgram::new(
            "test-compiler",
            &circuit,
            ops,
            &ScheduleExecutor::paper_defaults(),
            Duration::from_millis(5),
        );
        assert_eq!(program.compiler_name(), "test-compiler");
        assert_eq!(program.circuit_name(), "demo");
        assert_eq!(program.metrics().two_qubit_gates, 1);
        assert_eq!(program.num_qubits(), 2);
        assert_eq!(program.compile_time(), Duration::from_millis(5));
    }

    #[test]
    fn reevaluate_with_ideal_models_improves_fidelity() {
        let mut circuit = Circuit::with_name("demo", 2);
        circuit.cx(0, 1);
        let ops = vec![
            ScheduledOp::Shuttle {
                qubit: QubitId::new(0),
                from_zone: 1,
                to_zone: 0,
                distance_um: 100.0,
            },
            ScheduledOp::TwoQubitGate {
                a: QubitId::new(0),
                b: QubitId::new(1),
                zone: 0,
                ions_in_zone: 12,
            },
        ];
        let program = CompiledProgram::new(
            "test",
            &circuit,
            ops,
            &ScheduleExecutor::paper_defaults(),
            Duration::ZERO,
        );
        let ideal = ScheduleExecutor::new(
            crate::TimingModel::default(),
            crate::FidelityModel::perfect_gates(),
        );
        let ideal_metrics = program.reevaluate(&ideal);
        assert!(ideal_metrics.log_fidelity.ln() > program.metrics().log_fidelity.ln());
        // The op sequence itself is unchanged.
        assert_eq!(ideal_metrics.shuttle_count, program.metrics().shuttle_count);
    }
}
