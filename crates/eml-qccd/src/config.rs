//! EML-QCCD device configuration.

use serde::{Deserialize, Serialize};

use crate::DeviceError;

/// Configuration of an entanglement-module-linked QCCD device.
///
/// Defaults follow Section 4 of the paper ("Architecture Setting"): each
/// module has one optical zone, one operation zone and two storage zones,
/// every zone holds up to 16 ions, a module holds at most 32 ions, and the
/// number of modules grows with the application size (one module per 32
/// qubits).
///
/// ```
/// use eml_qccd::DeviceConfig;
///
/// let device = DeviceConfig::for_qubits(128).build();
/// assert_eq!(device.num_modules(), 4);
/// assert_eq!(device.zones().len(), 4 * 4);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceConfig {
    num_modules: usize,
    trap_capacity: usize,
    optical_zones_per_module: usize,
    operation_zones_per_module: usize,
    storage_zones_per_module: usize,
    max_qubits_per_module: usize,
    /// Physical distance in micrometres between adjacent zones of a module
    /// (used to derive shuttle move durations).
    inter_zone_distance_um: f64,
}

impl Default for DeviceConfig {
    fn default() -> Self {
        DeviceConfig {
            num_modules: 4,
            trap_capacity: 16,
            optical_zones_per_module: 1,
            operation_zones_per_module: 1,
            storage_zones_per_module: 2,
            max_qubits_per_module: 32,
            inter_zone_distance_um: 100.0,
        }
    }
}

impl DeviceConfig {
    /// The paper's default architecture (4 modules, capacity 16).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sizes the device for an application with `num_qubits` logical qubits
    /// following Section 4 of the paper: the number of QCCD modules grows
    /// dynamically with the application size, one module (32-qubit cap) per
    /// started block of 32 qubits, everything else at paper defaults.
    pub fn for_qubits(num_qubits: usize) -> Self {
        let cfg = Self::default();
        let modules = num_qubits.div_ceil(cfg.max_qubits_per_module).max(1);
        cfg.with_modules(modules)
    }

    /// Sets the number of QCCD modules.
    pub fn with_modules(mut self, num_modules: usize) -> Self {
        self.num_modules = num_modules;
        self
    }

    /// Sets the per-zone ion capacity (the paper sweeps 12–20 in Fig. 7).
    pub fn with_trap_capacity(mut self, capacity: usize) -> Self {
        self.trap_capacity = capacity;
        self
    }

    /// Sets the number of optical (entanglement) zones per module
    /// (the paper compares 1 vs 2 in Fig. 12).
    pub fn with_optical_zones(mut self, zones: usize) -> Self {
        self.optical_zones_per_module = zones;
        self
    }

    /// Sets the number of operation zones per module.
    pub fn with_operation_zones(mut self, zones: usize) -> Self {
        self.operation_zones_per_module = zones;
        self
    }

    /// Sets the number of storage zones per module.
    pub fn with_storage_zones(mut self, zones: usize) -> Self {
        self.storage_zones_per_module = zones;
        self
    }

    /// Sets the maximum number of ions a module may hold.
    pub fn with_max_qubits_per_module(mut self, max: usize) -> Self {
        self.max_qubits_per_module = max;
        self
    }

    /// Sets the physical distance between adjacent zones of a module.
    pub fn with_inter_zone_distance_um(mut self, distance: f64) -> Self {
        self.inter_zone_distance_um = distance;
        self
    }

    /// Number of modules.
    pub fn num_modules(&self) -> usize {
        self.num_modules
    }

    /// Per-zone ion capacity.
    pub fn trap_capacity(&self) -> usize {
        self.trap_capacity
    }

    /// Optical zones per module.
    pub fn optical_zones_per_module(&self) -> usize {
        self.optical_zones_per_module
    }

    /// Operation zones per module.
    pub fn operation_zones_per_module(&self) -> usize {
        self.operation_zones_per_module
    }

    /// Storage zones per module.
    pub fn storage_zones_per_module(&self) -> usize {
        self.storage_zones_per_module
    }

    /// Maximum ions per module.
    pub fn max_qubits_per_module(&self) -> usize {
        self.max_qubits_per_module
    }

    /// Distance between adjacent zones of a module in micrometres.
    pub fn inter_zone_distance_um(&self) -> f64 {
        self.inter_zone_distance_um
    }

    /// Zones per module across all levels.
    pub fn zones_per_module(&self) -> usize {
        self.optical_zones_per_module
            + self.operation_zones_per_module
            + self.storage_zones_per_module
    }

    /// Total ion capacity of the whole device, respecting the per-module cap.
    pub fn total_capacity(&self) -> usize {
        let per_module_slots = self.zones_per_module() * self.trap_capacity;
        self.num_modules * per_module_slots.min(self.max_qubits_per_module)
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidConfig`] when the device has no modules,
    /// no gate-capable zone, or zero capacity.
    pub fn validate(&self) -> Result<(), DeviceError> {
        if self.num_modules == 0 {
            return Err(DeviceError::InvalidConfig(
                "device must have at least one module".into(),
            ));
        }
        if self.trap_capacity < 2 {
            return Err(DeviceError::InvalidConfig(
                "trap capacity must be at least 2 so a two-qubit gate can execute".into(),
            ));
        }
        if self.optical_zones_per_module + self.operation_zones_per_module == 0 {
            return Err(DeviceError::InvalidConfig(
                "each module needs at least one gate-capable (operation or optical) zone".into(),
            ));
        }
        if self.max_qubits_per_module < 2 {
            return Err(DeviceError::InvalidConfig(
                "module qubit cap must be at least 2".into(),
            ));
        }
        if !(self.inter_zone_distance_um.is_finite()) || self.inter_zone_distance_um <= 0.0 {
            return Err(DeviceError::InvalidConfig(
                "inter-zone distance must be positive".into(),
            ));
        }
        Ok(())
    }

    /// Builds the device described by this configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid; use [`DeviceConfig::try_build`]
    /// for a fallible variant.
    pub fn build(&self) -> crate::EmlQccdDevice {
        self.try_build()
            .expect("invalid EML-QCCD device configuration")
    }

    /// Builds the device, returning an error for invalid configurations.
    ///
    /// # Errors
    ///
    /// Propagates [`DeviceConfig::validate`] failures.
    pub fn try_build(&self) -> Result<crate::EmlQccdDevice, DeviceError> {
        self.validate()?;
        Ok(crate::EmlQccdDevice::from_config(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_section4() {
        let c = DeviceConfig::default();
        assert_eq!(c.trap_capacity(), 16);
        assert_eq!(c.optical_zones_per_module(), 1);
        assert_eq!(c.operation_zones_per_module(), 1);
        assert_eq!(c.storage_zones_per_module(), 2);
        assert_eq!(c.max_qubits_per_module(), 32);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn for_qubits_adds_one_module_per_32_qubits() {
        assert_eq!(DeviceConfig::for_qubits(32).num_modules(), 1);
        assert_eq!(DeviceConfig::for_qubits(64).num_modules(), 2);
        assert_eq!(DeviceConfig::for_qubits(128).num_modules(), 4);
        assert_eq!(DeviceConfig::for_qubits(299).num_modules(), 10);
    }

    #[test]
    fn total_capacity_respects_module_cap() {
        let c = DeviceConfig::default().with_modules(2);
        // 4 zones * 16 = 64 slots, capped at 32 per module.
        assert_eq!(c.total_capacity(), 64);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(DeviceConfig::default().with_modules(0).validate().is_err());
        assert!(DeviceConfig::default()
            .with_trap_capacity(1)
            .validate()
            .is_err());
        assert!(DeviceConfig::default()
            .with_optical_zones(0)
            .with_operation_zones(0)
            .validate()
            .is_err());
        assert!(DeviceConfig::default()
            .with_inter_zone_distance_um(-1.0)
            .validate()
            .is_err());
    }

    #[test]
    fn builder_is_chainable() {
        let c = DeviceConfig::new()
            .with_modules(6)
            .with_trap_capacity(8)
            .with_optical_zones(2);
        assert_eq!(c.num_modules(), 6);
        assert_eq!(c.trap_capacity(), 8);
        assert_eq!(c.zones_per_module(), 5);
    }
}
