//! Operation durations (Table 1 of the paper).

use serde::{Deserialize, Serialize};

use crate::ScheduledOp;

/// Durations of the primitive hardware operations, in microseconds (and the
/// ion transport speed in µm/µs). Defaults reproduce Table 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimingModel {
    /// Chain split duration (µs).
    pub split_us: f64,
    /// Chain merge duration (µs).
    pub merge_us: f64,
    /// Intra-trap chain swap duration (µs).
    pub chain_swap_us: f64,
    /// Ion transport speed (µm per µs).
    pub move_speed_um_per_us: f64,
    /// Single-qubit gate duration (µs).
    pub single_qubit_gate_us: f64,
    /// Local two-qubit gate duration (µs).
    pub two_qubit_gate_us: f64,
    /// Fiber-entanglement (remote gate) duration (µs).
    pub fiber_entangle_us: f64,
    /// Measurement duration (µs). The paper's evaluation excludes readout
    /// time, so the default is zero.
    pub measurement_us: f64,
}

impl Default for TimingModel {
    fn default() -> Self {
        TimingModel {
            split_us: 80.0,
            merge_us: 80.0,
            chain_swap_us: 40.0,
            move_speed_um_per_us: 2.0,
            single_qubit_gate_us: 5.0,
            two_qubit_gate_us: 40.0,
            fiber_entangle_us: 200.0,
            measurement_us: 0.0,
        }
    }
}

impl TimingModel {
    /// The Table 1 parameter set.
    pub fn paper_defaults() -> Self {
        Self::default()
    }

    /// Duration of a complete shuttle (split + move over `distance_um` + merge).
    pub fn shuttle_us(&self, distance_um: f64) -> f64 {
        self.split_us + distance_um / self.move_speed_um_per_us + self.merge_us
    }

    /// Duration of a logical SWAP gate (three back-to-back MS gates).
    pub fn swap_gate_us(&self) -> f64 {
        3.0 * self.two_qubit_gate_us
    }

    /// Duration of one scheduled operation.
    pub fn duration_us(&self, op: &ScheduledOp) -> f64 {
        match op {
            ScheduledOp::SingleQubitGate { .. } => self.single_qubit_gate_us,
            ScheduledOp::TwoQubitGate { .. } => self.two_qubit_gate_us,
            ScheduledOp::SwapGate { .. } => self.swap_gate_us(),
            ScheduledOp::FiberGate { .. } => self.fiber_entangle_us,
            ScheduledOp::Shuttle { distance_um, .. } => self.shuttle_us(*distance_um),
            ScheduledOp::ChainRearrange { .. } => self.chain_swap_us,
            ScheduledOp::Measurement { .. } => self.measurement_us,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ion_circuit::QubitId;

    #[test]
    fn defaults_match_table1() {
        let t = TimingModel::paper_defaults();
        assert_eq!(t.split_us, 80.0);
        assert_eq!(t.merge_us, 80.0);
        assert_eq!(t.chain_swap_us, 40.0);
        assert_eq!(t.move_speed_um_per_us, 2.0);
        assert_eq!(t.single_qubit_gate_us, 5.0);
        assert_eq!(t.two_qubit_gate_us, 40.0);
        assert_eq!(t.fiber_entangle_us, 200.0);
    }

    #[test]
    fn shuttle_duration_includes_split_move_merge() {
        let t = TimingModel::default();
        // 100 µm at 2 µm/µs = 50 µs of transport.
        assert_eq!(t.shuttle_us(100.0), 80.0 + 50.0 + 80.0);
    }

    #[test]
    fn swap_gate_is_three_ms_gates() {
        assert_eq!(TimingModel::default().swap_gate_us(), 120.0);
    }

    #[test]
    fn op_durations_dispatch_by_variant() {
        let t = TimingModel::default();
        let gate = ScheduledOp::TwoQubitGate {
            a: QubitId::new(0),
            b: QubitId::new(1),
            zone: 0,
            ions_in_zone: 2,
        };
        assert_eq!(t.duration_us(&gate), 40.0);
        let fiber = ScheduledOp::FiberGate {
            a: QubitId::new(0),
            b: QubitId::new(1),
            zone_a: 0,
            zone_b: 5,
        };
        assert_eq!(t.duration_us(&fiber), 200.0);
        let shuttle = ScheduledOp::Shuttle {
            qubit: QubitId::new(2),
            from_zone: 0,
            to_zone: 1,
            distance_um: 200.0,
        };
        assert_eq!(t.duration_us(&shuttle), 260.0);
    }
}
