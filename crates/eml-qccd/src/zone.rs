//! Zones: the functional trap regions inside a QCCD module.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The functional level of a zone, mirroring the paper's memory-hierarchy
/// analogy (Section 3): storage ≈ external storage (level 0), operation ≈
/// main memory (level 1), optical ≈ CPU (level 2).
///
/// Higher levels offer more functionality: the operation zone can execute
/// local two-qubit gates, and the optical zone can additionally participate
/// in fiber-mediated gates with optical zones of *other* modules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ZoneLevel {
    /// Level 0 — storage zone. Qubits parked here cannot execute gates.
    Storage,
    /// Level 1 — operation zone. Local (intra-module) two-qubit gates.
    Operation,
    /// Level 2 — optical zone. Local gates plus fiber entanglement with other modules.
    Optical,
}

impl ZoneLevel {
    /// The numeric level used by the multi-level scheduler (0, 1 or 2).
    pub const fn level(self) -> u8 {
        match self {
            ZoneLevel::Storage => 0,
            ZoneLevel::Operation => 1,
            ZoneLevel::Optical => 2,
        }
    }

    /// `true` if two-qubit gates can be executed inside this zone.
    pub const fn supports_gates(self) -> bool {
        !matches!(self, ZoneLevel::Storage)
    }

    /// `true` if this zone has an ion–photon interface for remote entanglement.
    pub const fn supports_fiber(self) -> bool {
        matches!(self, ZoneLevel::Optical)
    }

    /// Absolute level distance between two zones, used by the scheduler to
    /// prefer the *closest* level that satisfies a request.
    pub fn distance(self, other: ZoneLevel) -> u8 {
        self.level().abs_diff(other.level())
    }

    /// All levels, lowest first.
    pub const fn all() -> [ZoneLevel; 3] {
        [ZoneLevel::Storage, ZoneLevel::Operation, ZoneLevel::Optical]
    }
}

impl fmt::Display for ZoneLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ZoneLevel::Storage => "storage",
            ZoneLevel::Operation => "operation",
            ZoneLevel::Optical => "optical",
        };
        write!(f, "{name}")
    }
}

/// Globally unique identifier of a zone within a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ZoneId(pub usize);

impl ZoneId {
    /// The raw index of the zone in the device's zone table.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ZoneId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "z{}", self.0)
    }
}

/// Identifier of a QCCD module within an EML-QCCD device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ModuleId(pub usize);

impl ModuleId {
    /// The raw index of the module.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ModuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// Static description of one zone: which module it belongs to, its level and
/// its ion capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Zone {
    /// Global zone identifier.
    pub id: ZoneId,
    /// The module this zone belongs to.
    pub module: ModuleId,
    /// Functional level.
    pub level: ZoneLevel,
    /// Maximum number of ions the zone can hold.
    pub capacity: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_ordered_storage_to_optical() {
        assert!(ZoneLevel::Storage < ZoneLevel::Operation);
        assert!(ZoneLevel::Operation < ZoneLevel::Optical);
        assert_eq!(ZoneLevel::Storage.level(), 0);
        assert_eq!(ZoneLevel::Optical.level(), 2);
    }

    #[test]
    fn capability_flags_match_paper_roles() {
        assert!(!ZoneLevel::Storage.supports_gates());
        assert!(ZoneLevel::Operation.supports_gates());
        assert!(ZoneLevel::Optical.supports_gates());
        assert!(ZoneLevel::Optical.supports_fiber());
        assert!(!ZoneLevel::Operation.supports_fiber());
    }

    #[test]
    fn level_distance_is_symmetric() {
        assert_eq!(ZoneLevel::Storage.distance(ZoneLevel::Optical), 2);
        assert_eq!(ZoneLevel::Optical.distance(ZoneLevel::Storage), 2);
        assert_eq!(ZoneLevel::Operation.distance(ZoneLevel::Operation), 0);
    }

    #[test]
    fn display_names_are_lowercase() {
        assert_eq!(ZoneLevel::Optical.to_string(), "optical");
        assert_eq!(ZoneId(3).to_string(), "z3");
        assert_eq!(ModuleId(1).to_string(), "m1");
    }
}
