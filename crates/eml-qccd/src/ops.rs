//! The operation vocabulary emitted by compilers and consumed by the executor.

use serde::{Deserialize, Serialize};

use ion_circuit::QubitId;

/// A resource key identifying a physical zone or trap.
///
/// EML-QCCD compilers use [`ZoneId`](crate::ZoneId) indices; grid compilers
/// use [`TrapId`](crate::TrapId) indices. The executor only needs the keys to
/// be distinct within one compiled program, so a plain `usize` keeps the two
/// device families interchangeable downstream.
pub type ResourceId = usize;

/// One scheduled physical operation.
///
/// Compilers lower a [`Circuit`](ion_circuit::Circuit) into a flat sequence
/// of these; the [`ScheduleExecutor`](crate::ScheduleExecutor) folds timing,
/// heat and fidelity over the sequence. Each variant carries exactly the
/// information the executor's models need (e.g. the ion count in the trap at
/// gate time, which determines two-qubit gate fidelity `1 − εN²`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ScheduledOp {
    /// A single-qubit gate executed wherever the ion currently sits.
    SingleQubitGate {
        /// The ion being driven.
        qubit: QubitId,
        /// Zone/trap holding the ion.
        zone: ResourceId,
    },
    /// A local (same-trap) two-qubit gate.
    TwoQubitGate {
        /// First ion.
        a: QubitId,
        /// Second ion.
        b: QubitId,
        /// Zone/trap in which the gate executes.
        zone: ResourceId,
        /// Number of ions co-trapped at execution time (drives `1 − εN²`).
        ions_in_zone: usize,
    },
    /// A logical SWAP gate implemented as three MS gates in one trap
    /// (inserted by MUSS-TI's SWAP-insertion pass).
    SwapGate {
        /// First ion.
        a: QubitId,
        /// Second ion.
        b: QubitId,
        /// Zone/trap in which the swap executes.
        zone: ResourceId,
        /// Number of ions co-trapped at execution time.
        ions_in_zone: usize,
    },
    /// A fiber-mediated two-qubit gate between the optical zones of two
    /// different modules (remote entanglement).
    FiberGate {
        /// Ion in the first module's optical zone.
        a: QubitId,
        /// Ion in the second module's optical zone.
        b: QubitId,
        /// Optical zone holding `a`.
        zone_a: ResourceId,
        /// Optical zone holding `b`.
        zone_b: ResourceId,
    },
    /// A complete shuttle (split → move → merge) relocating one ion between
    /// two adjacent traps/zones.
    Shuttle {
        /// The ion being moved.
        qubit: QubitId,
        /// Source zone/trap.
        from_zone: ResourceId,
        /// Destination zone/trap.
        to_zone: ResourceId,
        /// Physical transport distance in micrometres.
        distance_um: f64,
    },
    /// An intra-trap chain rearrangement (the Table 1 "Swap" primitive) used
    /// to bring an ion to the edge of its chain before splitting.
    ChainRearrange {
        /// Zone/trap whose chain is reordered.
        zone: ResourceId,
    },
    /// A computational-basis measurement.
    Measurement {
        /// The measured ion.
        qubit: QubitId,
        /// Zone/trap holding the ion.
        zone: ResourceId,
    },
}

impl ScheduledOp {
    /// `true` for complete shuttle relocations.
    pub fn is_shuttle(&self) -> bool {
        matches!(self, ScheduledOp::Shuttle { .. })
    }

    /// `true` for any two-qubit interaction (local, swap or fiber).
    pub fn is_two_qubit(&self) -> bool {
        matches!(
            self,
            ScheduledOp::TwoQubitGate { .. }
                | ScheduledOp::SwapGate { .. }
                | ScheduledOp::FiberGate { .. }
        )
    }

    /// The qubits this operation acts on, as an allocation-free pair
    /// (`None` slots are unused; `ChainRearrange` touches no qubit).
    pub fn qubit_pair(&self) -> (Option<QubitId>, Option<QubitId>) {
        match self {
            ScheduledOp::SingleQubitGate { qubit, .. }
            | ScheduledOp::Shuttle { qubit, .. }
            | ScheduledOp::Measurement { qubit, .. } => (Some(*qubit), None),
            ScheduledOp::TwoQubitGate { a, b, .. }
            | ScheduledOp::SwapGate { a, b, .. }
            | ScheduledOp::FiberGate { a, b, .. } => (Some(*a), Some(*b)),
            ScheduledOp::ChainRearrange { .. } => (None, None),
        }
    }

    /// The zone/trap resources this operation occupies, as an
    /// allocation-free pair (every operation occupies at least one zone).
    pub fn zone_pair(&self) -> (ResourceId, Option<ResourceId>) {
        match self {
            ScheduledOp::SingleQubitGate { zone, .. }
            | ScheduledOp::TwoQubitGate { zone, .. }
            | ScheduledOp::SwapGate { zone, .. }
            | ScheduledOp::Measurement { zone, .. }
            | ScheduledOp::ChainRearrange { zone } => (*zone, None),
            ScheduledOp::FiberGate { zone_a, zone_b, .. } => (*zone_a, Some(*zone_b)),
            ScheduledOp::Shuttle {
                from_zone, to_zone, ..
            } => (*from_zone, Some(*to_zone)),
        }
    }

    /// The qubits this operation acts on, as a freshly allocated `Vec`.
    ///
    /// Test-only convenience: production code uses the allocation-free
    /// [`ScheduledOp::qubit_pair`] (the hot-path lint denies this accessor).
    #[doc(hidden)]
    pub fn qubits(&self) -> Vec<QubitId> {
        match self {
            ScheduledOp::SingleQubitGate { qubit, .. }
            | ScheduledOp::Shuttle { qubit, .. }
            | ScheduledOp::Measurement { qubit, .. } => vec![*qubit],
            ScheduledOp::TwoQubitGate { a, b, .. }
            | ScheduledOp::SwapGate { a, b, .. }
            | ScheduledOp::FiberGate { a, b, .. } => vec![*a, *b],
            ScheduledOp::ChainRearrange { .. } => vec![],
        }
    }

    /// The zone/trap resources this operation occupies, as a freshly
    /// allocated `Vec`.
    ///
    /// Test-only convenience: production code uses the allocation-free
    /// [`ScheduledOp::zone_pair`] (the hot-path lint denies this accessor).
    #[doc(hidden)]
    pub fn zones(&self) -> Vec<ResourceId> {
        match self {
            ScheduledOp::SingleQubitGate { zone, .. }
            | ScheduledOp::TwoQubitGate { zone, .. }
            | ScheduledOp::SwapGate { zone, .. }
            | ScheduledOp::Measurement { zone, .. }
            | ScheduledOp::ChainRearrange { zone } => vec![*zone],
            ScheduledOp::FiberGate { zone_a, zone_b, .. } => vec![*zone_a, *zone_b],
            ScheduledOp::Shuttle {
                from_zone, to_zone, ..
            } => vec![*from_zone, *to_zone],
        }
    }
}

/// Destination for the operations a scheduling pass emits.
///
/// Schedulers are generic over the sink so one loop serves two modes: the
/// full pass appends into a pooled `Vec<ScheduledOp>`, while cost-only dry
/// passes (the SABRE forward/backward/probe runs) hand in an [`OpCounter`]
/// that folds each op into running totals without ever materialising the
/// stream — the op values are constructed in registers and optimised away.
pub trait OpSink {
    /// Accepts one emitted operation.
    fn push_op(&mut self, op: ScheduledOp);
}

impl OpSink for Vec<ScheduledOp> {
    #[inline]
    fn push_op(&mut self, op: ScheduledOp) {
        self.push(op);
    }
}

/// The cost-only [`OpSink`]: counts shuttles (the SABRE selection criterion)
/// and total ops instead of storing them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounter {
    /// Number of [`ScheduledOp::Shuttle`] operations seen.
    pub shuttles: usize,
    /// Total operations seen (any variant).
    pub total: usize,
}

impl OpSink for OpCounter {
    #[inline]
    fn push_op(&mut self, op: ScheduledOp) {
        self.total += 1;
        if op.is_shuttle() {
            self.shuttles += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_counter_counts_what_a_vec_stores() {
        let ops = [
            ScheduledOp::Shuttle {
                qubit: QubitId::new(0),
                from_zone: 0,
                to_zone: 1,
                distance_um: 10.0,
            },
            ScheduledOp::ChainRearrange { zone: 0 },
            ScheduledOp::TwoQubitGate {
                a: QubitId::new(0),
                b: QubitId::new(1),
                zone: 1,
                ions_in_zone: 2,
            },
            ScheduledOp::Shuttle {
                qubit: QubitId::new(1),
                from_zone: 1,
                to_zone: 0,
                distance_um: 10.0,
            },
        ];
        let mut vec_sink: Vec<ScheduledOp> = Vec::new();
        let mut counter = OpCounter::default();
        for op in &ops {
            vec_sink.push_op(op.clone());
            counter.push_op(op.clone());
        }
        assert_eq!(counter.total, vec_sink.len());
        assert_eq!(
            counter.shuttles,
            vec_sink.iter().filter(|o| o.is_shuttle()).count()
        );
    }

    #[test]
    fn classification_helpers() {
        let shuttle = ScheduledOp::Shuttle {
            qubit: QubitId::new(0),
            from_zone: 1,
            to_zone: 2,
            distance_um: 100.0,
        };
        assert!(shuttle.is_shuttle());
        assert!(!shuttle.is_two_qubit());
        let fiber = ScheduledOp::FiberGate {
            a: QubitId::new(0),
            b: QubitId::new(1),
            zone_a: 0,
            zone_b: 4,
        };
        assert!(fiber.is_two_qubit());
        assert_eq!(fiber.zones(), vec![0, 4]);
        assert_eq!(fiber.qubits().len(), 2);
    }

    #[test]
    fn chain_rearrange_touches_no_qubit() {
        let op = ScheduledOp::ChainRearrange { zone: 3 };
        assert!(op.qubits().is_empty());
        assert_eq!(op.zones(), vec![3]);
    }

    #[test]
    fn pair_accessors_agree_with_vec_accessors() {
        let ops = vec![
            ScheduledOp::SingleQubitGate {
                qubit: QubitId::new(0),
                zone: 0,
            },
            ScheduledOp::TwoQubitGate {
                a: QubitId::new(0),
                b: QubitId::new(1),
                zone: 2,
                ions_in_zone: 2,
            },
            ScheduledOp::SwapGate {
                a: QubitId::new(3),
                b: QubitId::new(4),
                zone: 1,
                ions_in_zone: 3,
            },
            ScheduledOp::FiberGate {
                a: QubitId::new(0),
                b: QubitId::new(5),
                zone_a: 0,
                zone_b: 4,
            },
            ScheduledOp::Shuttle {
                qubit: QubitId::new(2),
                from_zone: 1,
                to_zone: 3,
                distance_um: 100.0,
            },
            ScheduledOp::ChainRearrange { zone: 6 },
            ScheduledOp::Measurement {
                qubit: QubitId::new(1),
                zone: 5,
            },
        ];
        for op in &ops {
            let (qa, qb) = op.qubit_pair();
            let flat: Vec<QubitId> = [qa, qb].into_iter().flatten().collect();
            assert_eq!(flat, op.qubits(), "{op:?}");
            let (za, zb) = op.zone_pair();
            let flat: Vec<usize> = std::iter::once(Some(za)).chain([zb]).flatten().collect();
            assert_eq!(flat, op.zones(), "{op:?}");
        }
    }
}
